// Command prismcase creates, replays, verifies and minimizes
// .prismcase record/replay testcases: self-contained files holding a
// run's workload, seed, configuration, fault spec, optional embedded
// mid-run checkpoint, and the expected results recorded at creation.
//
// Usage:
//
//	prismcase create -o case.prismcase -workload fft -size ci -policy SCOMA -checkpoint-at 800000
//	prismcase run case.prismcase
//	prismcase verify testdata/cases/*.prismcase
//	prismcase verify -csv results_ci.csv -metrics metrics_ci.json testdata/cases/*.prismcase
//	prismcase minimize -o min.prismcase failing.prismcase
//
// verify replays each case twice — a full run from the beginning and,
// when a checkpoint is embedded, restore + resume — and requires both
// to match the recorded hashes. -csv additionally diffs each case's
// sweep row against the reference CSV's row for the same (app, policy)
// cell; -metrics diffs the full metrics export of any case matching
// the reference export's workload × policy. Both are the CI replay
// gates.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prism/internal/harness"
	"prism/internal/metrics"
	"prism/internal/testcase"
	"prism/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage:
  prismcase create -o <file> -workload <name|chaos> -policy <name> [flags]
  prismcase run [-full] <file>
  prismcase verify [-csv ref.csv] [-metrics ref.json] <file>...
  prismcase minimize [-o out] <file>`

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	switch args[0] {
	case "create":
		return runCreate(args[1:], stdout, stderr)
	case "run":
		return runRun(args[1:], stdout, stderr)
	case "verify":
		return runVerify(args[1:], stdout, stderr)
	case "minimize":
		return runMinimize(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, usage)
		return 0
	}
	fmt.Fprintf(stderr, "prismcase: unknown command %q\n%s\n", args[0], usage)
	return 2
}

func runCreate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("create", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "output .prismcase path (required)")
		name    = fs.String("name", "", "case name (default: derived from workload/policy)")
		wl      = fs.String("workload", "", "workload app spec (name[:key=val,key=val]) or \"chaos\" (required)")
		size    = fs.String("size", "mini", "data-set size ("+strings.Join(harness.SizeNames, "|")+")")
		pol     = fs.String("policy", "", "policy name (required)")
		seed    = fs.Int64("seed", 1, "chaos seed")
		ops     = fs.Int("ops", 0, "chaos per-proc op count (0 = default)")
		nodesN  = fs.Int("nodes", 0, "override node count")
		procs   = fs.Int("procs", 0, "override procs per node")
		hwSync  = fs.Bool("hw-sync", false, "hardware (Sync-mode page) synchronization")
		dramPIT = fs.Bool("dram-pit", false, "PIT at DRAM speed")
		caps    = fs.String("caps", "", "per-node page-cache caps, comma separated")
		faults  = fs.String("faults", "", "fault spec (fault.ParseSpec syntax)")
		sample  = fs.Int64("sample", 0, "interval metric samples every N cycles")
		ckptAt  = fs.Int64("checkpoint-at", 0, "embed a checkpoint at the first quiescent barrier fill at/after this sim time")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" || *wl == "" || *pol == "" {
		fmt.Fprintln(stderr, "prismcase create: -o, -workload and -policy are required")
		return 2
	}
	c := &testcase.Case{
		Name: *name, Workload: *wl, Size: *size, Policy: *pol,
		Seed: *seed, Ops: *ops, Nodes: *nodesN, Procs: *procs,
		HardwareSync: *hwSync, DRAMPIT: *dramPIT,
		FaultSpec: *faults, SampleEvery: *sample, CheckpointAt: *ckptAt,
	}
	if c.Workload == testcase.ChaosName {
		c.Size = ""
	} else {
		// -workload speaks the harness app-spec grammar; the case
		// stores the resolved name and parameter overrides separately.
		wlName, params, err := harness.ParseAppSpec(*wl)
		if err != nil {
			fmt.Fprintf(stderr, "prismcase create: %v\n", err)
			return 2
		}
		c.Workload, c.Params = wlName, params
	}
	if c.Name == "" {
		c.Name = strings.ToLower(c.Workload + "-" + strings.ReplaceAll(*pol, "-", ""))
	}
	if *caps != "" {
		for _, f := range strings.Split(*caps, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(stderr, "prismcase create: bad -caps: %v\n", err)
				return 2
			}
			c.PageCacheCaps = append(c.PageCacheCaps, v)
		}
	}
	if err := testcase.Create(c); err != nil {
		fmt.Fprintf(stderr, "prismcase create: %v\n", err)
		return 1
	}
	if err := testcase.Save(*out, c); err != nil {
		fmt.Fprintf(stderr, "prismcase create: %v\n", err)
		return 1
	}
	st, _ := os.Stat(*out)
	fmt.Fprintf(stdout, "created %s (%d bytes)\n", *out, st.Size())
	printCase(stdout, c)
	return 0
}

func runRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "run from the beginning even when a checkpoint is embedded")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "prismcase run: exactly one case file")
		return 2
	}
	c, err := testcase.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "prismcase run: %v\n", err)
		return 1
	}
	var o *testcase.Outcome
	if *full {
		o, err = c.RunFull()
	} else {
		o, err = c.Run()
	}
	if err != nil {
		fmt.Fprintf(stderr, "prismcase run: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, harness.CSVHeader)
	fmt.Fprintln(stdout, o.CSVRow)
	fmt.Fprintf(stdout, "cycles=%d results=%s metrics=%s\n", o.Cycles, o.ResultsSHA256, o.MetricsSHA256)
	return 0
}

func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csvRef := fs.String("csv", "", "reference sweep CSV to diff case rows against")
	metRef := fs.String("metrics", "", "reference metrics export to diff matching cases against")
	refSize := fs.String("size", "ci", "only cases of this data-set size are diffed against -csv/-metrics")
	only := fs.String("only", "", "restrict the -metrics diff to component (or component/name-prefix) filters, comma separated")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "prismcase verify: no case files")
		return 2
	}
	var refRows map[string]string
	if *csvRef != "" {
		var err error
		refRows, err = loadCSVRows(*csvRef)
		if err != nil {
			fmt.Fprintf(stderr, "prismcase verify: %v\n", err)
			return 1
		}
	}
	var refExport *metrics.Export
	if *metRef != "" {
		var err error
		refExport, err = metrics.ReadExportFile(*metRef)
		if err != nil {
			fmt.Fprintf(stderr, "prismcase verify: %v\n", err)
			return 1
		}
	}
	failed := 0
	metricsMatched := false
	for _, path := range fs.Args() {
		c, err := testcase.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL %s: %v\n", path, err)
			failed++
			continue
		}
		o, err := c.Verify()
		if err != nil {
			fmt.Fprintf(stderr, "FAIL %s: %v\n", path, err)
			failed++
			continue
		}
		ok := true
		atRefSize := c.Size == *refSize
		if refRows != nil && atRefSize {
			key := rowKey(o.CSVRow)
			want, present := refRows[key]
			if !present {
				fmt.Fprintf(stderr, "FAIL %s: cell %s not in %s\n", path, key, *csvRef)
				ok = false
			} else if o.CSVRow != want {
				fmt.Fprintf(stderr, "FAIL %s: row diverges from %s\n  got  %q\n  want %q\n", path, *csvRef, o.CSVRow, want)
				ok = false
			}
		}
		if refExport != nil && atRefSize && o.Export.Workload == refExport.Workload && o.Export.Policy == refExport.Policy {
			metricsMatched = true
			if err := diffExports(o.Export, refExport, filters); err != nil {
				fmt.Fprintf(stderr, "FAIL %s: metrics diverge from %s: %v\n", path, *metRef, err)
				ok = false
			}
		}
		if !ok {
			failed++
			continue
		}
		fmt.Fprintf(stdout, "ok %s (%s, cycles=%d)\n", path, c.Name, o.Cycles)
	}
	if refExport != nil && !metricsMatched {
		fmt.Fprintf(stderr, "prismcase verify: no case matches %s (%s × %s)\n", *metRef, refExport.Workload, refExport.Policy)
		failed++
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "prismcase verify: %d failure(s)\n", failed)
		return 1
	}
	return 0
}

func runMinimize(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minimize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output path (default <input>.min.prismcase)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "prismcase minimize: exactly one case file")
		return 2
	}
	c, err := testcase.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "prismcase minimize: %v\n", err)
		return 1
	}
	if !testcase.RunFails(c) {
		fmt.Fprintf(stderr, "prismcase minimize: %s does not fail; nothing to minimize\n", fs.Arg(0))
		return 1
	}
	m := testcase.Minimize(c, testcase.RunFails)
	if *out == "" {
		*out = strings.TrimSuffix(fs.Arg(0), ".prismcase") + ".min.prismcase"
	}
	if err := testcase.Save(*out, m); err != nil {
		fmt.Fprintf(stderr, "prismcase minimize: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "minimized %s -> %s\n", fs.Arg(0), *out)
	printCase(stdout, m)
	return 0
}

func printCase(w io.Writer, c *testcase.Case) {
	fmt.Fprintf(w, "  name=%s workload=%s", c.Name, c.Workload)
	for _, k := range workloads.Params(c.Params).Keys() {
		fmt.Fprintf(w, " %s=%s", k, c.Params[k])
	}
	if c.Size != "" {
		fmt.Fprintf(w, " size=%s", c.Size)
	}
	fmt.Fprintf(w, " policy=%s", c.Policy)
	if c.Workload == testcase.ChaosName {
		fmt.Fprintf(w, " seed=%d ops=%d", c.Seed, c.Ops)
	}
	if c.Nodes > 0 {
		fmt.Fprintf(w, " nodes=%d", c.Nodes)
	}
	if c.Procs > 0 {
		fmt.Fprintf(w, " procs=%d", c.Procs)
	}
	if c.HardwareSync {
		fmt.Fprint(w, " hw-sync")
	}
	if c.DRAMPIT {
		fmt.Fprint(w, " dram-pit")
	}
	if c.FaultSpec != "" {
		fmt.Fprintf(w, " faults=%q", c.FaultSpec)
	}
	if c.Checkpoint != nil {
		fmt.Fprintf(w, " checkpoint@t=%d", c.Checkpoint.Now)
	}
	fmt.Fprintln(w)
	if c.Expect != nil {
		fmt.Fprintf(w, "  expect cycles=%d results=%s metrics=%s\n",
			c.Expect.Cycles, c.Expect.ResultsSHA256[:12], c.Expect.MetricsSHA256[:12])
	}
}

// loadCSVRows indexes a sweep CSV by its "app,policy" cell key.
func loadCSVRows(path string) (map[string]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(strings.ReplaceAll(string(raw), "\r\n", "\n"), "\n"), "\n")
	if len(lines) == 0 || lines[0] != harness.CSVHeader {
		return nil, fmt.Errorf("%s: not a sweep CSV (header mismatch)", path)
	}
	rows := make(map[string]string, len(lines)-1)
	for _, ln := range lines[1:] {
		rows[rowKey(ln)] = ln
	}
	return rows, nil
}

func rowKey(line string) string {
	fields := strings.SplitN(line, ",", 3)
	if len(fields) < 3 {
		return line
	}
	return fields[0] + "," + fields[1]
}

// diffExports compares two metrics exports (optionally restricted to
// component/name-prefix filters, the same semantics as prismstat
// diff -only) and reports the first few changed metrics.
func diffExports(got, want *metrics.Export, only []string) error {
	if got.Cycles != want.Cycles {
		return fmt.Errorf("cycles %d, want %d", got.Cycles, want.Cycles)
	}
	changed := metrics.Changed(metrics.Diff(want, got, only))
	if len(changed) == 0 {
		return nil
	}
	var b strings.Builder
	for i, d := range changed {
		if i == 3 {
			fmt.Fprintf(&b, " (+%d more)", len(changed)-i)
			break
		}
		fmt.Fprintf(&b, " %s/%s[n%d] %v->%v", d.Component, d.Name, d.Node, d.A, d.B)
	}
	return fmt.Errorf("%d metrics differ:%s", len(changed), b.String())
}
