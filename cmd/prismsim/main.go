// Command prismsim runs one or more applications under one or more
// page-mode policies on the simulated PRISM machine and prints each
// run's statistics.
//
// Usage:
//
//	prismsim -app fft -policy Dyn-LRU -size ci [-cap-frac 0.7] [-pit 2]
//	prismsim -app fft,ocean -policy SCOMA,Dyn-LRU -size ci -j 8
//	prismsim -app fft -policy SCOMA -faults seed=42,drop=0.02,dup=0.01
//
// Capped policies (SCOMA-70, Dyn-*) automatically run a SCOMA sizing
// pass first, exactly like the paper's methodology. With comma-
// separated -app/-policy lists the cells execute concurrently on -j
// workers (default: all host cores; -seq forces one at a time); every
// cell owns a private machine, so the printed results are identical at
// any -j, in app-major, policy-minor order.
//
// -faults makes the interconnect lossy under a seeded deterministic
// schedule; the network's recovery transport (timeouts, retransmission,
// duplicate suppression) repairs the damage, so runs still terminate
// with the usual results. The sizing pass runs on the same lossy fabric.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prism"
	"prism/internal/fault"
	"prism/internal/harness"
	"prism/internal/sim"
	"prism/workloads"
)

func main() {
	defer harness.HandlePanic("prismsim")
	var cli harness.CLI
	app := flag.String("app", "fft", "app spec (comma-separated list allowed): name[:key=val;key=val] over "+strings.Join(workloads.AllNames(), "|"))
	pol := flag.String("policy", "SCOMA", "policy (comma-separated list allowed): SCOMA|LANUMA|SCOMA-70|Dyn-FCFS|Dyn-Util|Dyn-LRU")
	cli.RegisterSize(flag.CommandLine, "ci")
	capFrac := flag.Float64("cap-frac", 0.70, "page-cache fraction of SCOMA max (capped policies)")
	pit := flag.Uint64("pit", 0, "PIT access time override in cycles (0 = default 2)")
	cli.RegisterParallel(flag.CommandLine)
	cli.RegisterMetrics(flag.CommandLine)
	cli.RegisterSample(flag.CommandLine)
	cli.RegisterFaults(flag.CommandLine)
	flag.Parse()

	size, err := cli.Size()
	if err != nil {
		fatal(err)
	}
	faults, err := cli.FaultPlan()
	if err != nil {
		fatal(err)
	}
	apps := harness.SplitAppList(*app)
	pols := strings.Split(*pol, ",")
	if len(apps) > 1 || len(pols) > 1 {
		runSweep(apps, pols, size, *capFrac, *pit, &cli, faults)
		return
	}

	policy, err := prism.PolicyByName(*pol)
	if err != nil {
		fatal(err)
	}

	var caps []int
	if needsCap(policy.Name()) {
		fmt.Fprintf(os.Stderr, "sizing pass (SCOMA)...\n")
		res, err := runOnce(*app, "SCOMA", size, nil, *pit, faults, "", 0, cli.Parallelism())
		if err != nil {
			fatal(err)
		}
		caps = make([]int, len(res.MaxClientFrames))
		for i, c := range res.MaxClientFrames {
			caps[i] = int(float64(c) * *capFrac)
			if caps[i] < 1 {
				caps[i] = 1
			}
		}
		fmt.Fprintf(os.Stderr, "page-cache caps per node: %v\n", caps)
	}

	res, err := runOnce(*app, policy.Name(), size, caps, *pit, faults, cli.MetricsDir, cli.SampleEvery(), cli.Parallelism())
	if err != nil {
		fatal(err)
	}
	fmt.Print(res)
}

// runSweep executes an app × policy grid through the harness worker
// pool (the SCOMA sizing pass runs per app, as always) and prints the
// requested cells in deterministic order.
func runSweep(apps, pols []string, size workloads.Size, capFrac float64, pit uint64, cli *harness.CLI, faults *fault.Plan) {
	for _, p := range pols {
		if _, err := prism.PolicyByName(p); err != nil {
			fatal(err)
		}
	}
	opts := harness.Options{
		Size:        size,
		Apps:        apps,
		Policies:    pols,
		CapFraction: capFrac,
		PITAccess:   sim.Time(pit),
		Log:         os.Stderr,
		Workers:     cli.Workers(),
		Parallelism: cli.Parallelism(),
		MetricsDir:  cli.MetricsDir,
		SampleEvery: cli.SampleEvery(),
		Faults:      faults,
	}
	runs, err := harness.Run(opts)
	if err != nil {
		fatal(err)
	}
	for _, ar := range runs {
		for _, p := range pols {
			res, ok := ar.ByPol[p]
			if !ok {
				continue
			}
			fmt.Print(res)
		}
	}
}

func runOnce(app, polName string, size workloads.Size, caps []int, pit uint64, faults *fault.Plan, metricsDir string, sample sim.Time, par int) (prism.Results, error) {
	cfg := workloads.ConfigForSize(size)
	p, err := prism.PolicyByName(polName)
	if err != nil {
		return prism.Results{}, err
	}
	cfg.Policy = p
	cfg.PageCacheCaps = caps
	if pit != 0 {
		cfg.Node.PITConfig.AccessTime = sim.Time(pit)
	}
	cfg.Faults = faults
	if par > 1 {
		// Same fallbacks as the harness: software-lock apps, interval
		// sampling and fault injection are sequential-only.
		if harness.AppLockFree(app) && !faults.Active() && !(metricsDir != "" && sample != 0) {
			cfg.Parallelism = par
		} else {
			fmt.Fprintf(os.Stderr, "%s/%s: sequential engine (-par %d unsupported for this cell)\n", app, polName, par)
		}
	}
	m, err := prism.New(cfg)
	if err != nil {
		return prism.Results{}, err
	}
	if metricsDir != "" && sample != 0 {
		m.SampleMetrics(sample)
	}
	w, err := harness.NewWorkloadSpec(app, size)
	if err != nil {
		return prism.Results{}, err
	}
	res, err := m.Run(w)
	if err != nil {
		return prism.Results{}, err
	}
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return prism.Results{}, err
		}
		path := filepath.Join(metricsDir, fmt.Sprintf("%s_%s.json", harness.SpecFileName(app), polName))
		if err := m.ExportMetrics(app, polName).WriteJSONFile(path); err != nil {
			return prism.Results{}, err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return res, nil
}

func needsCap(pol string) bool {
	return pol != "SCOMA" && pol != "LANUMA"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prismsim:", err)
	os.Exit(1)
}
