// Command prismbench regenerates the paper's tables and figures.
//
// Usage:
//
//	prismbench -exp table1                 # latency microbenchmark
//	prismbench -exp fig7,table3,table4,table5 -size ci
//	prismbench -exp pit                    # §4.3 PIT study
//	prismbench -exp all -size ci
//	prismbench -exp fig7 -size ci -verify results_ci.csv   # regression gate
//	prismbench -exp fig7 -size ci -faults seed=42,drop=0.02  # lossy fabric
//
// Figure 7 and Tables 3-5 come from the same six-policy sweep, which
// is run once per invocation when any of them is requested. Sweep
// cells run concurrently on -j workers (default: all host cores); each
// cell is an independent deterministic simulation, so the output is
// byte-identical to a -seq run at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"prism/internal/harness"
)

func main() {
	defer harness.HandlePanic("prismbench")
	var cli harness.CLI
	exp := flag.String("exp", "all", "experiments: table1,table2,fig7,table3,table4,table5,pit,all")
	cli.RegisterSize(flag.CommandLine, "ci")
	apps := flag.String("apps", "", "comma-separated app specs, name[:key=val;key=val] (default the eight SPLASH kernels)")
	pols := flag.String("pols", "", "comma-separated policy subset in sweep order (default the Figure 7 six)")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	csvPath := flag.String("csv", "", "also write the sweep's raw per-run results as CSV")
	cli.RegisterParallel(flag.CommandLine)
	verify := flag.String("verify", "", "compare the sweep's CSV against this reference file and fail on divergence")
	cli.RegisterMetrics(flag.CommandLine)
	cli.RegisterSample(flag.CommandLine)
	cli.RegisterFaults(flag.CommandLine)
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	bench := flag.String("bench", "", "run in-process microbenchmarks: comma list or 'all' ("+strings.Join(benchNames(), ",")+")")
	benchJSON := flag.String("benchjson", "", "write -bench results (plus sweep wall time, if a sweep ran) as JSON")
	benchCheck := flag.String("benchcheck", "", "fail if -bench allocs/op regress above this committed baseline JSON")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote heap profile %s\n", *memprofile)
		}()
	}

	size, err := cli.Size()
	if err != nil {
		fatal(err)
	}
	faults, err := cli.FaultPlan()
	if err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["all"] {
		for _, e := range []string{"table1", "table2", "fig7", "table3", "table4", "table5", "pit"} {
			want[e] = true
		}
	}

	opts := harness.Options{
		Size:        size,
		Workers:     cli.Workers(),
		Parallelism: cli.Parallelism(),
		MetricsDir:  cli.MetricsDir,
		SampleEvery: cli.SampleEvery(),
		Faults:      faults,
	}
	if *apps != "" {
		opts.Apps = harness.SplitAppList(*apps)
	}
	if *pols != "" {
		opts.Policies = strings.Split(*pols, ",")
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if *verify != "" && !(want["fig7"] || want["table3"] || want["table4"] || want["table5"]) {
		fatal(fmt.Errorf("-verify needs the policy sweep (fig7/table3/table4/table5)"))
	}

	if want["table1"] {
		out, err := harness.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want["table2"] {
		fmt.Println(harness.FormatTable2())
	}

	var sweep *SweepTiming
	if want["fig7"] || want["table3"] || want["table4"] || want["table5"] {
		start := time.Now()
		runs, err := harness.Run(opts)
		if err != nil {
			fatal(err)
		}
		sweep = &SweepTiming{
			Exp: *exp, Size: cli.SizeName, Jobs: opts.Workers,
			WallMS: time.Since(start).Milliseconds(),
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatal(err)
			}
			if err := harness.WriteCSV(f, runs); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		if *verify != "" {
			if err := harness.VerifyAgainstFile(runs, *verify); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "verify: sweep matches %s\n", *verify)
		}
		if want["fig7"] {
			fmt.Println(harness.FormatFig7(runs))
		}
		if want["table3"] {
			fmt.Println(harness.FormatTable3(runs))
		}
		if want["table4"] {
			fmt.Println(harness.FormatTable4(runs))
		}
		if want["table5"] {
			fmt.Println(harness.FormatTable5(runs))
		}
	}

	if want["pit"] {
		rows, err := harness.RunPITSweep(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(harness.FormatPITSweep(rows))
	}

	if sweep != nil {
		fmt.Fprintf(os.Stderr, "sweep wall time: %d ms (jobs=%d)\n", sweep.WallMS, sweep.Jobs)
	}

	if *bench != "" {
		results, err := runBenchSuite(*bench)
		if err != nil {
			fatal(err)
		}
		fmt.Println(formatBench(results))
		if *benchJSON != "" {
			rep := BenchReport{Benchmarks: results, Sweep: sweep}
			if err := writeBenchJSON(*benchJSON, rep); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
		}
		if *benchCheck != "" {
			if err := checkBenchBaseline(*benchCheck, results); err != nil {
				fatal(err)
			}
		}
	} else if *benchJSON != "" || *benchCheck != "" {
		fatal(fmt.Errorf("-benchjson/-benchcheck need -bench"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prismbench:", err)
	os.Exit(1)
}
