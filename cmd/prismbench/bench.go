// In-process microbenchmarks and the committed host-performance
// baseline (BENCH_10.json).
//
// `prismbench -bench all` runs the suite via testing.Benchmark and
// prints a table; `-benchjson FILE` writes the results (plus the
// sweep's wall time when a sweep ran in the same invocation) as JSON;
// `-benchcheck FILE` re-runs the suite and fails if any benchmark's
// allocs/op regressed above the committed baseline — the CI gate that
// keeps the event core allocation-free.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"prism"
	"prism/internal/directory"
	"prism/internal/ipc"
	"prism/internal/kernel"
	"prism/internal/mem"
	"prism/internal/network"
	"prism/internal/node"
	"prism/internal/pit"
	"prism/internal/policy"
	"prism/internal/sim"
	"prism/internal/timing"
	"prism/workloads"
)

// BenchResult is one benchmark's headline numbers.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepTiming records the wall time of the policy sweep run in the
// same invocation.
type SweepTiming struct {
	Exp    string `json:"exp"`
	Size   string `json:"size"`
	Jobs   int    `json:"jobs"`
	WallMS int64  `json:"wall_ms"`
}

// BenchReport is the schema of BENCH_10.json.
type BenchReport struct {
	Note       string        `json:"note,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
	Sweep      *SweepTiming  `json:"sweep,omitempty"`
	// Previous preserves the numbers measured before the last
	// intentional performance change, for the speedup record.
	Previous *BenchReport `json:"previous,omitempty"`
}

// benchSuite maps benchmark names to bodies. Everything except the
// Machine* entries must stay 0 allocs/op; the Machine* entries run one
// full mini-size simulation per iteration.
var benchSuite = map[string]func(b *testing.B){
	"EventQueue":       benchEventQueue,
	"CoroutineHandoff": benchCoroutineHandoff,
	"PITLookup":        benchPITLookup,
	"PITReverseHash":   benchPITReverseHash,
	"DirectoryAccess":  benchDirectoryAccess,
	"KernelPTEHit":     benchKernelPTEHit,
	"MachineFFT":       func(b *testing.B) { benchMachine(b, "fft", "SCOMA", 1) },
	"MachineRadix":     func(b *testing.B) { benchMachine(b, "radix", "Dyn-LRU", 1) },
	"MachineOcean":     func(b *testing.B) { benchMachine(b, "ocean", "SCOMA", 1) },
	"MachineFFTPar4":   func(b *testing.B) { benchMachine(b, "fft", "SCOMA", 4) },
	"MachineOceanPar4": func(b *testing.B) { benchMachine(b, "ocean", "SCOMA", 4) },
}

// speedupPairs maps each parallel-engine benchmark to its sequential
// twin. checkBenchBaseline gates the seq/par wall-time ratio of every
// pair on hosts with enough cores for the ratio to mean anything.
var speedupPairs = map[string]string{
	"MachineFFTPar4":   "MachineFFT",
	"MachineOceanPar4": "MachineOcean",
}

// benchEventQueue mirrors internal/sim's BenchmarkEventQueue: raw
// schedule+dispatch throughput of the specialized heap.
func benchEventQueue(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Time(i%64), func() {})
		if e.Pending() > 1024 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// benchCoroutineHandoff mirrors internal/sim's
// BenchmarkCoroutineHandoff: one block/step round trip.
func benchCoroutineHandoff(b *testing.B) {
	e := sim.NewEngine()
	c := sim.NewCoro("bench")
	c.Start(func() {
		for {
			c.Block()
		}
	})
	e.ScheduleStep(0, c)
	e.RunUntilIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// benchPITLookup mirrors internal/pit's BenchmarkLookup: the forward
// translation behind every bus transaction, on the dense table.
func benchPITLookup(b *testing.B) {
	p := benchPITTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e, _ := p.Lookup(mem.FrameID(i & 255)); e == nil {
			b.Fatal("missing entry")
		}
	}
}

// benchPITReverseHash mirrors internal/pit's BenchmarkReverseLookupHash:
// reverse translation with no frame guess, through the open-addressing
// reverse table.
func benchPITReverseHash(b *testing.B) {
	p := benchPITTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := mem.GPage{Seg: 1, Page: uint32(i & 255)}
		if _, ok, _ := p.ReverseLookup(g, 0, false); !ok {
			b.Fatal("hash path failed")
		}
	}
}

func benchPITTable() *pit.PIT {
	p := pit.New(0, mem.DefaultGeometry, pit.DefaultConfig)
	for i := 0; i < 256; i++ {
		p.Insert(mem.FrameID(i), pit.Entry{
			Mode:  pit.ModeSCOMA,
			GPage: mem.GPage{Seg: 1, Page: uint32(i)},
			Caps:  mem.AllNodes(),
		})
	}
	return p
}

// benchDirectoryAccess mirrors internal/directory's BenchmarkAccess:
// the home side's per-request line lookup on the paged slice arena.
func benchDirectoryAccess(b *testing.B) {
	d := directory.New(0, mem.DefaultGeometry, directory.DefaultConfig)
	const pages = 64
	for i := 0; i < pages; i++ {
		d.AddPage(mem.GPage{Seg: 1, Page: uint32(i)}, 0)
	}
	lpp := mem.DefaultGeometry.LinesPerPage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e, _, ok := d.Access(mem.GPage{Seg: 1, Page: uint32(i % pages)}, i%lpp); !ok || e == nil {
			b.Fatal("missing directory entry")
		}
	}
}

// benchKernelPTEHit is the fault path's hot translation on a software
// TLB hit. One node is built (the kernel's private-fault path needs
// its bound controller), one private page mapped, then PTE is hammered.
func benchKernelPTEHit(b *testing.B) {
	e := sim.NewEngine()
	geom := mem.DefaultGeometry
	tm := timing.Default()
	reg := ipc.NewRegistry(geom, 1)
	net := network.New(e, 1, network.DefaultConfig)
	k := kernel.New(e, 0, geom, &tm, kernel.Config{RealFrames: 256}, reg, net, policy.SCOMA{})
	n := node.New(e, 0, geom, &tm, node.DefaultConfig(geom), net, reg, k)
	net.Attach(0, n)
	const vsid = mem.VSID(2)
	k.AttachPrivate(vsid)
	vp := mem.VPage{Seg: vsid, Page: 0}
	mapped := false
	k.HandleFault(vp, func(at sim.Time, f mem.FrameID, ok bool) { mapped = ok })
	e.RunUntilIdle()
	if !mapped {
		b.Fatal("private fault did not map the page")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := k.PTE(vp); !ok {
			b.Fatal("lost mapping")
		}
	}
}

// benchMachine runs one full mini-size simulation per iteration,
// sequential (par <= 1) or on the conservative parallel engine.
func benchMachine(b *testing.B, app, pol string, par int) {
	cfg := workloads.ConfigForSize(workloads.MiniSize)
	cfg.Policy = prism.MustPolicy(pol)
	cfg.Parallelism = par
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := prism.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w, err := workloads.ByName(app, workloads.MiniSize)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}

// runBenchSuite executes the selected benchmarks (comma list or
// "all") and returns their results in name order.
func runBenchSuite(sel string) ([]BenchResult, error) {
	var names []string
	if sel == "all" {
		for n := range benchSuite {
			names = append(names, n)
		}
		sort.Strings(names)
	} else {
		for _, n := range strings.Split(sel, ",") {
			n = strings.TrimSpace(n)
			if _, ok := benchSuite[n]; !ok {
				return nil, fmt.Errorf("unknown benchmark %q (have: %s)", n, strings.Join(benchNames(), ","))
			}
			names = append(names, n)
		}
	}
	var out []BenchResult
	for _, n := range names {
		r := testing.Benchmark(benchSuite[n])
		out = append(out, BenchResult{
			Name:        n,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}

func benchNames() []string {
	var names []string
	for n := range benchSuite {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// formatBench renders results as a table.
func formatBench(rs []BenchResult) string {
	out := fmt.Sprintf("%-18s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rs {
		out += fmt.Sprintf("%-18s %14.1f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return out
}

// writeBenchJSON writes the report to path.
func writeBenchJSON(path string, rep BenchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkBenchBaseline compares measured allocation behavior against the
// committed baseline and reports every regression. Only allocation
// statistics are gated — ns/op is too noisy on shared CI runners.
// Allocs/op gets a 1% relative tolerance, which absorbs the few-alloc
// jitter of full-machine benchmarks (map growth timing) while still
// gating the 0 allocs/op engine benchmarks exactly (1% of zero is
// zero). Bytes/op gets a looser 10% tolerance: byte counts wobble more
// than counts (a single slab or table doubling landing on a different
// iteration moves kilobytes), but a steady-state allocation leak still
// trips it long before it trips allocs/op rounding.
func checkBenchBaseline(path string, measured []BenchResult) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base BenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseline := map[string]BenchResult{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	var regressions []string
	for _, m := range measured {
		b, ok := baseline[m.Name]
		if !ok {
			continue
		}
		limit := b.AllocsPerOp + b.AllocsPerOp/100
		if m.AllocsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op, baseline %d (limit %d)", m.Name, m.AllocsPerOp, b.AllocsPerOp, limit))
		}
		byteLimit := b.BytesPerOp + b.BytesPerOp/10
		if m.BytesPerOp > byteLimit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d B/op, baseline %d (limit %d)", m.Name, m.BytesPerOp, b.BytesPerOp, byteLimit))
		}
	}
	regressions = append(regressions, checkSpeedups(baseline, measured)...)
	if len(regressions) > 0 {
		return fmt.Errorf("allocation regressions vs %s:\n  %s", path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchcheck: allocs/op and bytes/op within baseline %s\n", path)
	return nil
}

// checkSpeedups gates the parallel engine's scaling: for every
// measured seq/par pair also present in the baseline, the speedup
// ratio must stay within 20% of the baseline's. The gate only arms on
// hosts with at least 4 CPUs — below that the shards time-slice one
// core and the ratio measures scheduler overhead, not scaling (the
// committed BENCH_10.json baseline itself comes from a single-core
// container, so its ratios are ~1.0 and the gate tightens naturally
// the first time a multi-core host refreshes the baseline).
func checkSpeedups(baseline map[string]BenchResult, measured []BenchResult) []string {
	meas := map[string]BenchResult{}
	for _, m := range measured {
		meas[m.Name] = m
	}
	if runtime.NumCPU() < 4 {
		for par := range speedupPairs {
			if _, ok := meas[par]; ok {
				fmt.Fprintf(os.Stderr,
					"benchcheck: host has %d CPUs; parallel-engine speedup gate skipped (needs >= 4)\n",
					runtime.NumCPU())
				break
			}
		}
		return nil
	}
	var regressions []string
	for par, seq := range speedupPairs {
		mp, ok1 := meas[par]
		ms, ok2 := meas[seq]
		bp, ok3 := baseline[par]
		bs, ok4 := baseline[seq]
		if !ok1 || !ok2 || !ok3 || !ok4 || mp.NsPerOp == 0 || bp.NsPerOp == 0 {
			continue
		}
		got := ms.NsPerOp / mp.NsPerOp
		floor := (bs.NsPerOp / bp.NsPerOp) * 0.8
		if got < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: speedup %.2fx vs %s, baseline %.2fx (floor %.2fx)",
					par, got, seq, bs.NsPerOp/bp.NsPerOp, floor))
		}
	}
	return regressions
}
