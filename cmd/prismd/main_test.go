package main

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the serve goroutine
// writes while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// cli runs one prismd subcommand, returning exit code and output.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut, nil)
	return code, out.String(), errOut.String()
}

// TestServeEndToEnd drives the full daemon through the CLI: boot,
// submit (fresh then cached), status, cancel of a missing job, and a
// SIGTERM drain to exit 0.
func TestServeEndToEnd(t *testing.T) {
	sig := make(chan os.Signal, 1)
	var serveOut, serveErr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"serve", "-addr", "127.0.0.1:0"}, &serveOut, &serveErr, sig)
	}()

	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no ready line; stdout %q, stderr %q", serveOut.String(), serveErr.String())
		}
		if s := serveOut.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			url = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	code, out, errOut := cli(t, "submit", "-addr", url,
		"-size", "mini", "-apps", "fft", "-policies", "SCOMA", "-csv", "-")
	if code != 0 {
		t.Fatalf("submit: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "state: done") || !strings.Contains(out, "cached: false") {
		t.Errorf("fresh submit output:\n%s", out)
	}
	if !strings.Contains(out, "app,policy,") || !strings.Contains(out, "fft,SCOMA,") {
		t.Errorf("-csv - did not print the result CSV:\n%s", out)
	}

	code, out, _ = cli(t, "submit", "-addr", url,
		"-size", "mini", "-apps", "fft", "-policies", "SCOMA", "-wait")
	if code != 0 || !strings.Contains(out, "cached: true") {
		t.Errorf("resubmit: exit %d, output:\n%s", code, out)
	}

	code, out, _ = cli(t, "status", "-addr", url)
	if code != 0 || !strings.Contains(out, "j0001") || !strings.Contains(out, "(cached)") {
		t.Errorf("status list: exit %d, output:\n%s", code, out)
	}
	code, out, _ = cli(t, "status", "-addr", url, "j0001")
	if code != 0 || !strings.Contains(out, "state: done") {
		t.Errorf("status detail: exit %d, output:\n%s", code, out)
	}

	// Server-side errors are one-line failures, not panics.
	code, _, errOut = cli(t, "cancel", "-addr", url, "j9999")
	if code != 1 || !strings.Contains(errOut, "no job") {
		t.Errorf("cancel of missing job: exit %d, stderr %q", code, errOut)
	}
	code, _, errOut = cli(t, "submit", "-addr", url, "-size", "huge")
	if code != 1 || !strings.Contains(errOut, "mini") {
		t.Errorf("bad size: exit %d, stderr %q (want the valid-sizes list)", code, errOut)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM\nstderr:\n%s", code, serveErr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not drain after SIGTERM\nstderr:\n%s", serveErr.String())
	}
	if s := serveErr.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained; exiting") {
		t.Errorf("drain lifecycle not logged:\n%s", s)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"serve", "-addr"},            // flag needs a value
		{"serve", "stray-arg"},        // serve takes none
		{"submit", "-nosuch"},         // unknown flag
		{"status", "-addr", "x", "a", "b"}, // too many args
		{"cancel"},                    // missing job id
	}
	for _, args := range cases {
		if code, _, _ := cli(t, args...); code != 2 {
			t.Errorf("prismd %v: exit %d, want 2", args, code)
		}
	}
	// -case excludes the spec flags.
	code, _, errOut := cli(t, "submit", "-case", "x.prismcase", "-size", "mini")
	if code != 1 || !strings.Contains(errOut, "-case") {
		t.Errorf("-case + -size: exit %d, stderr %q", code, errOut)
	}
}
