// Command prismd serves the PRISM experiment gateway and talks to it:
// a long-running HTTP/JSON daemon that queues policy-sweep jobs onto
// the harness worker pool, caches results by content address, and
// streams job progress over SSE — plus thin client subcommands.
//
// Usage:
//
//	prismd serve  [-addr 127.0.0.1:8077] [-queue 64] [-jobs 1] [-job-workers 0] [-cache 256] [-drain-timeout 0]
//	prismd submit [-addr URL] [-size ci] [-apps a,b] [-policies p,q] [-cap 0.7]
//	              [-dram-pit] [-faults spec] [-metrics] [-sample N] [-case file.prismcase]
//	              [-wait] [-csv out.csv]
//	prismd status [-addr URL] [job-id]
//	prismd cancel [-addr URL] <job-id>
//
// serve exits 0 on SIGTERM/SIGINT after draining: intake stops (new
// submits get 503), queued and running jobs finish, then the process
// exits. A second signal aborts in-flight jobs at their next cell
// boundary.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prism/internal/harness"
	"prism/internal/server"
	"prism/internal/server/client"
)

func main() {
	defer harness.HandlePanic("prismd")
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

const usage = `usage:
  prismd serve  [-addr 127.0.0.1:8077] [-queue N] [-jobs N] [-job-workers N] [-cache N] [-drain-timeout D]
  prismd submit [-addr URL] [spec flags | -case file.prismcase] [-wait] [-csv out.csv]
  prismd status [-addr URL] [job-id]
  prismd cancel [-addr URL] <job-id>`

// run is the testable entry point; it returns the process exit code.
// sig delivers shutdown signals to serve (tests inject their own).
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, usage)
		return 2
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], stdout, stderr, sig)
	case "submit":
		return runSubmit(args[1:], stdout, stderr)
	case "status":
		return runStatus(args[1:], stdout, stderr)
	case "cancel":
		return runCancel(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, usage)
		return 0
	}
	fmt.Fprintf(stderr, "prismd: unknown command %q\n%s\n", args[0], usage)
	return 2
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "prismd:", err)
	return 1
}

func runServe(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := harness.NewFlagSet("serve", stderr)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks a free port)")
	queue := fs.Int("queue", 64, "job queue depth (submits beyond it are rejected)")
	jobs := fs.Int("jobs", 1, "jobs executing concurrently")
	jobWorkers := fs.Int("job-workers", 0, "harness workers per job (0 = all cores)")
	cache := fs.Int("cache", 256, "result cache entries")
	drainTimeout := fs.Duration("drain-timeout", 0, "max time to wait for in-flight jobs on shutdown (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prismd: serve takes no arguments (got %q)\n", fs.Args())
		return 2
	}

	srv := server.New(server.Config{
		QueueDepth:   *queue,
		Jobs:         *jobs,
		JobWorkers:   *jobWorkers,
		CacheEntries: *cache,
		Log:          stderr,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// The ready line the smoke script and tests wait for.
	fmt.Fprintf(stdout, "prismd: listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return fail(stderr, err)
	case s := <-sig:
		fmt.Fprintf(stderr, "prismd: %v received; draining (new submits rejected)\n", s)
	}

	drainCtx := context.Background()
	cancel := context.CancelFunc(func() {})
	if *drainTimeout > 0 {
		drainCtx, cancel = context.WithTimeout(drainCtx, *drainTimeout)
	}
	defer cancel()
	go func() {
		if _, ok := <-sig; ok {
			fmt.Fprintln(stderr, "prismd: second signal; aborting in-flight jobs")
			srv.Abort()
		}
	}()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "prismd: drain: %v\n", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	hs.Shutdown(shutCtx) //nolint:errcheck // lingering SSE clients are cut off
	fmt.Fprintln(stderr, "prismd: drained; exiting")
	return 0
}

// csvList splits a comma-separated flag, dropping empty items.
func csvList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func runSubmit(args []string, stdout, stderr io.Writer) int {
	fs := harness.NewFlagSet("submit", stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "prismd base URL")
	size := fs.String("size", "", "data-set size: "+strings.Join(harness.SizeNames, "|")+" (default ci)")
	apps := fs.String("apps", "", "comma-separated app subset (default all)")
	policies := fs.String("policies", "", "comma-separated policy subset (default all)")
	capFrac := fs.Float64("cap", 0, "page-cache cap fraction (default 0.70)")
	dramPIT := fs.Bool("dram-pit", false, "model the PIT in DRAM (10-cycle access)")
	faults := fs.String("faults", "", "fault-injection spec (see prismsim -faults)")
	metricsOn := fs.Bool("metrics", false, "collect per-cell telemetry exports")
	sample := fs.Uint64("sample", 0, "sample interval metrics every N cycles (implies -metrics)")
	caseFile := fs.String("case", "", "submit this .prismcase instead of spec flags")
	wait := fs.Bool("wait", false, "stream job progress and wait for completion")
	csvOut := fs.String("csv", "", "write the result CSV here (\"-\" = stdout; implies -wait)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prismd: submit takes no arguments (got %q)\n", fs.Args())
		return 2
	}

	c := client.New(*addr)
	var st server.Status
	var err error
	if *caseFile != "" {
		if *size != "" || *apps != "" || *policies != "" || *capFrac != 0 || *dramPIT || *faults != "" {
			return fail(stderr, errors.New("-case replaces the spec flags; use one or the other"))
		}
		f, ferr := os.Open(*caseFile)
		if ferr != nil {
			return fail(stderr, ferr)
		}
		st, err = c.SubmitCase(f)
		f.Close()
	} else {
		spec := &server.Spec{
			Size:        *size,
			Apps:        csvList(*apps),
			Policies:    csvList(*policies),
			CapFraction: *capFrac,
			Faults:      *faults,
			Metrics:     *metricsOn,
			SampleEvery: *sample,
		}
		if *dramPIT {
			spec.PITAccess = 10
		}
		st, err = c.Submit(spec)
	}
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "job: %s\n", st.ID)

	if *wait || *csvOut != "" {
		st, err = c.Wait(context.Background(), st.ID, stderr)
		if err != nil {
			return fail(stderr, err)
		}
	}
	fmt.Fprintf(stdout, "state: %s\n", st.State)
	fmt.Fprintf(stdout, "cached: %v\n", st.Cached)
	if st.Error != "" {
		fmt.Fprintf(stdout, "error: %s\n", st.Error)
	}
	if st.State != server.StateDone {
		if st.State.Terminal() {
			return 1
		}
		return 0 // queued/running fire-and-forget submit
	}
	if *csvOut != "" {
		data, err := c.ResultCSV(st.ID)
		if err != nil {
			return fail(stderr, err)
		}
		if *csvOut == "-" {
			stdout.Write(data) //nolint:errcheck
		} else if err := os.WriteFile(*csvOut, data, 0o644); err != nil {
			return fail(stderr, err)
		}
	}
	return 0
}

func runStatus(args []string, stdout, stderr io.Writer) int {
	fs := harness.NewFlagSet("status", stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "prismd base URL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c := client.New(*addr)
	switch fs.NArg() {
	case 0:
		jobs, err := c.Jobs()
		if err != nil {
			return fail(stderr, err)
		}
		for _, j := range jobs {
			line := fmt.Sprintf("%s  %-8s  digest %.12s…", j.ID, j.State, j.Digest)
			if j.Cached {
				line += "  (cached)"
			}
			if j.Error != "" {
				line += "  " + j.Error
			}
			fmt.Fprintln(stdout, line)
		}
		return 0
	case 1:
		st, err := c.Job(fs.Arg(0))
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "job: %s\nstate: %s\ncached: %v\ndigest: %s\n", st.ID, st.State, st.Cached, st.Digest)
		if st.Error != "" {
			fmt.Fprintf(stdout, "error: %s\n", st.Error)
		}
		return 0
	}
	fmt.Fprintln(stderr, "usage: prismd status [-addr URL] [job-id]")
	return 2
}

func runCancel(args []string, stdout, stderr io.Writer) int {
	fs := harness.NewFlagSet("cancel", stderr)
	addr := fs.String("addr", "http://127.0.0.1:8077", "prismd base URL")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: prismd cancel [-addr URL] <job-id>")
		return 2
	}
	st, err := client.New(*addr).Cancel(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "job: %s\nstate: %s\n", st.ID, st.State)
	return 0
}
