// Public-API tests: everything a downstream user touches must work
// through the prism package alone.
package prism_test

import (
	"strings"
	"testing"

	"prism"
	"prism/workloads"
)

func TestDefaultConfigIsPaperMachine(t *testing.T) {
	cfg := prism.DefaultConfig()
	if cfg.Nodes != 8 || cfg.Node.Procs != 4 {
		t.Fatalf("machine %dx%d, want 8x4", cfg.Nodes, cfg.Node.Procs)
	}
	if cfg.Geometry.PageSize != 4096 {
		t.Fatalf("page size %d, want 4096", cfg.Geometry.PageSize)
	}
	if cfg.Net.Latency != 120 {
		t.Fatalf("network latency %d, want 120", cfg.Net.Latency)
	}
	if cfg.Timing.TLBMiss != 30 || cfg.Timing.L2Hit != 12 {
		t.Fatalf("timing %d/%d, want 30/12", cfg.Timing.TLBMiss, cfg.Timing.L2Hit)
	}
}

func TestPolicyRegistry(t *testing.T) {
	pols := prism.Policies()
	if len(pols) != 6 {
		t.Fatalf("policies %d, want the paper's 6", len(pols))
	}
	for _, p := range pols {
		got, err := prism.PolicyByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("round trip %s: %v", p.Name(), err)
		}
	}
	if _, err := prism.PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPolicy on bad name did not panic")
		}
	}()
	prism.MustPolicy("nope")
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	cfg := workloads.ConfigForSize(workloads.MiniSize)
	cfg.Policy = prism.MustPolicy("Dyn-FCFS")
	m, err := prism.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(workloads.NewWaterSpa(workloads.MiniSize))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "water-spa" || res.Policy != "Dyn-FCFS" {
		t.Fatalf("labels %q/%q", res.Workload, res.Policy)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"cycles", "remote misses", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("results text missing %q:\n%s", want, s)
		}
	}
}

// TestFunctionalOptions covers the options constructor: defaults, each
// option, composition with a seeding Config, and error propagation.
func TestFunctionalOptions(t *testing.T) {
	// Zero options = the paper's default machine.
	m, err := prism.New()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Nodes != 8 || m.Cfg.Policy.Name() != "SCOMA" {
		t.Fatalf("default machine %d nodes / %s", m.Cfg.Nodes, m.Cfg.Policy.Name())
	}

	m, err = prism.New(
		prism.WithNodes(4),
		prism.WithProcsPerNode(2),
		prism.WithPolicy("Dyn-LRU"),
		prism.WithPageCacheCaps([]int{2, 2, 2, 2}),
		prism.WithHardwareSync(),
		prism.WithFaults(42, prism.FaultRates{Drop: 0.01}),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	if cfg.Nodes != 4 || cfg.Node.Procs != 2 || cfg.Policy.Name() != "Dyn-LRU" || !cfg.HardwareSync {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if cfg.Faults == nil || cfg.Faults.Seed != 42 || cfg.Faults.Default.Drop != 0.01 {
		t.Fatalf("fault option not applied: %+v", cfg.Faults)
	}

	// A Config seeds the construction; later options override it.
	base := workloads.ConfigForSize(workloads.MiniSize)
	m, err = prism.New(base, prism.WithPolicy("LANUMA"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Nodes != base.Nodes || m.Cfg.Policy.Name() != "LANUMA" {
		t.Fatalf("config-as-option composition broke: %+v", m.Cfg)
	}

	// Errors surface from option application and from validation.
	if _, err := prism.New(prism.WithPolicy("nope")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := prism.New(prism.WithFaults(1, prism.FaultRates{Drop: 3})); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
	if _, err := prism.New(prism.WithFaultSpec("drop=nope")); err == nil {
		t.Error("malformed fault spec accepted")
	}
	if _, err := prism.New(prism.WithNodes(0)); err == nil {
		t.Error("zero nodes accepted")
	}
}

// TestOptionsEndToEnd runs a real workload through the options form,
// including a lossy fabric, and audits the result.
func TestOptionsEndToEnd(t *testing.T) {
	m, err := prism.New(
		workloads.ConfigForSize(workloads.MiniSize),
		prism.WithPolicy("Dyn-FCFS"),
		prism.WithFaultSpec("seed=7,drop=0.02,dup=0.02"),
		prism.WithConfig(func(c *prism.Config) { c.HardwareSync = true }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(workloads.NewWaterSpa(workloads.MiniSize))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationThroughPublicAPI(t *testing.T) {
	cfg := workloads.ConfigForSize(workloads.MiniSize)
	cfg.Policy = prism.MustPolicy("LANUMA")
	m, err := prism.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := prism.AttachMigration(m, 30_000, prism.DefaultMigrationPolicy)
	sc := workloads.DefaultSynthConfig()
	sc.Iters = 2
	sc.OpsPerIter = 800
	if _, err := m.Run(workloads.NewSynth(sc)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Scans == 0 {
		t.Error("daemon attached through public API never ran")
	}
}
