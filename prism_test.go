// Public-API tests: everything a downstream user touches must work
// through the prism package alone.
package prism_test

import (
	"strings"
	"testing"

	"prism"
	"prism/workloads"
)

func TestDefaultConfigIsPaperMachine(t *testing.T) {
	cfg := prism.DefaultConfig()
	if cfg.Nodes != 8 || cfg.Node.Procs != 4 {
		t.Fatalf("machine %dx%d, want 8x4", cfg.Nodes, cfg.Node.Procs)
	}
	if cfg.Geometry.PageSize != 4096 {
		t.Fatalf("page size %d, want 4096", cfg.Geometry.PageSize)
	}
	if cfg.Net.Latency != 120 {
		t.Fatalf("network latency %d, want 120", cfg.Net.Latency)
	}
	if cfg.Timing.TLBMiss != 30 || cfg.Timing.L2Hit != 12 {
		t.Fatalf("timing %d/%d, want 30/12", cfg.Timing.TLBMiss, cfg.Timing.L2Hit)
	}
}

func TestPolicyRegistry(t *testing.T) {
	pols := prism.Policies()
	if len(pols) != 6 {
		t.Fatalf("policies %d, want the paper's 6", len(pols))
	}
	for _, p := range pols {
		got, err := prism.PolicyByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("round trip %s: %v", p.Name(), err)
		}
	}
	if _, err := prism.PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPolicy on bad name did not panic")
		}
	}()
	prism.MustPolicy("nope")
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	cfg := workloads.ConfigForSize(workloads.MiniSize)
	cfg.Policy = prism.MustPolicy("Dyn-FCFS")
	m, err := prism.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(workloads.NewWaterSpa(workloads.MiniSize))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "water-spa" || res.Policy != "Dyn-FCFS" {
		t.Fatalf("labels %q/%q", res.Workload, res.Policy)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"cycles", "remote misses", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("results text missing %q:\n%s", want, s)
		}
	}
}

func TestMigrationThroughPublicAPI(t *testing.T) {
	cfg := workloads.ConfigForSize(workloads.MiniSize)
	cfg.Policy = prism.MustPolicy("LANUMA")
	m, err := prism.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := prism.AttachMigration(m, 30_000, prism.DefaultMigrationPolicy)
	sc := workloads.DefaultSynthConfig()
	sc.Iters = 2
	sc.OpsPerIter = 800
	if _, err := m.Run(workloads.NewSynth(sc)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Scans == 0 {
		t.Error("daemon attached through public API never ran")
	}
}
