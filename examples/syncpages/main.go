// Syncpages: §3.2's synchronization-page frame mode. PRISM's
// controller dispatches by page-frame mode, so a frame can invoke a
// locking protocol instead of the coherence protocol: each line of a
// Sync-mode page is a queue lock at the page's home controller, and a
// contended release hands the lock to the next waiter with one
// message. This demo hammers a handful of locks from all 32
// processors, once with ordinary coherent test-and-test&set locks and
// once with Sync-mode pages, and compares the coherence traffic.
//
//	go run ./examples/syncpages
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/workloads"
)

// contendWL: every processor loops acquire→update shared counter
// line→release over a small set of hot locks.
type contendWL struct {
	base   prism.VAddr
	rounds int
	locks  int
}

func (w *contendWL) Name() string { return "contend" }

func (w *contendWL) Setup(m *prism.Machine) error {
	w.rounds = 120
	w.locks = 4
	b, err := m.Alloc("contend.data", 4096)
	w.base = b
	return err
}

func (w *contendWL) Run(ctx *prism.Ctx) {
	p := ctx.P
	ctx.BeginParallel()
	for i := 0; i < w.rounds; i++ {
		lk := (ctx.ID + i) % w.locks
		p.Lock(lk)
		p.Read(w.base + prism.VAddr(lk*64))
		p.Write(w.base + prism.VAddr(lk*64))
		p.Unlock(lk)
		p.Compute(50)
	}
	ctx.EndParallel()
}

func run(hw bool) prism.Results {
	cfg := workloads.ConfigForSize(workloads.CISize)
	cfg.Policy = prism.MustPolicy("SCOMA")
	cfg.HardwareSync = hw
	m, err := prism.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(&contendWL{})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	sw := run(false)
	hw := run(true)

	fmt.Println("4 hot locks, 32 processors, 120 critical sections each:")
	fmt.Printf("  coherent test&set locks: cycles=%-10d remote+upgrades=%-7d msgs=%d\n",
		sw.Cycles, sw.RemoteMisses+sw.Upgrades, sw.NetMessages)
	fmt.Printf("  Sync-mode page locks:    cycles=%-10d remote+upgrades=%-7d msgs=%d\n",
		hw.Cycles, hw.RemoteMisses+hw.Upgrades, hw.NetMessages)
	if hw.Cycles < sw.Cycles {
		fmt.Printf("  queue locks win by %.2fx: contended handoffs skip the\n"+
			"  invalidation/re-fetch storm entirely.\n",
			float64(sw.Cycles)/float64(hw.Cycles))
	} else {
		fmt.Println("  coherent locks win here: same-node handoff batching beats")
		fmt.Println("  the mandatory home round trip at this contention level.")
	}
}
