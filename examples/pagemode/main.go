// Pagemode: the CC-NUMA vs S-COMA trade-off on one application — a
// miniature Figure 7. Runs Ocean (the most capacity-sensitive SPLASH
// code) under all six page-mode policies and plots normalized
// execution time as ASCII bars.
//
//	go run ./examples/pagemode [-app ocean] [-size ci]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"prism"
	"prism/workloads"
)

func main() {
	app := flag.String("app", "ocean", "application to sweep")
	sizeFlag := flag.String("size", "ci", "mini|ci|paper")
	flag.Parse()

	var size workloads.Size
	switch *sizeFlag {
	case "mini":
		size = workloads.MiniSize
	case "ci":
		size = workloads.CISize
	case "paper":
		size = workloads.PaperSize
	default:
		log.Fatalf("unknown size %q", *sizeFlag)
	}

	run := func(pol string, caps []int) prism.Results {
		cfg := workloads.ConfigForSize(size)
		cfg.Policy = prism.MustPolicy(pol)
		cfg.PageCacheCaps = caps
		m, err := prism.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		w, err := workloads.ByName(*app, size)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  ran %-9s cycles=%d remote=%d pageouts=%d\n",
			pol, res.Cycles, res.RemoteMisses, res.ClientPageOuts)
		return res
	}

	fmt.Fprintf(os.Stderr, "%s at %s size:\n", *app, size)
	scoma := run("SCOMA", nil)
	caps := make([]int, len(scoma.MaxClientFrames))
	for i, c := range scoma.MaxClientFrames {
		if caps[i] = c * 7 / 10; caps[i] < 1 {
			caps[i] = 1
		}
	}

	results := map[string]prism.Results{"SCOMA": scoma}
	order := []string{"SCOMA", "LANUMA", "SCOMA-70", "Dyn-FCFS", "Dyn-Util", "Dyn-LRU"}
	for _, pol := range order[1:] {
		var c []int
		if pol != "LANUMA" {
			c = caps
		}
		results[pol] = run(pol, c)
	}

	fmt.Printf("\n%s: execution time normalized to SCOMA\n\n", *app)
	for _, pol := range order {
		norm := float64(results[pol].Cycles) / float64(scoma.Cycles)
		bar := strings.Repeat("█", int(norm*30+0.5))
		fmt.Printf("%-9s %5.2f %s\n", pol, norm, bar)
	}
	fmt.Printf("\nremote misses: SCOMA=%d LANUMA=%d SCOMA-70=%d (page-outs %d)\n",
		results["SCOMA"].RemoteMisses, results["LANUMA"].RemoteMisses,
		results["SCOMA-70"].RemoteMisses, results["SCOMA-70"].ClientPageOuts)
}
