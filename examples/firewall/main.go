// Firewall: PRISM's fault-containment boundary (§3.2). Because
// physical addresses never address remote memory directly, every
// remote access is checked against the PIT at the home; extending a
// PIT entry with a capability list filters out wild writes from
// faulty nodes. This demo maps a page shared by nodes 0 and 1,
// restricts its capability list to those nodes, and lets a "faulty"
// node 7 attempt wild writes: the home rejects them, the writer takes
// an access fault, and the victims' data traffic is untouched.
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/internal/mem"
	"prism/workloads"
)

type firewallWL struct {
	m    *prism.Machine
	base prism.VAddr

	wildAttempts int
	wildFaults   uint64
	goodFaults   uint64
	drops        uint64
}

func (w *firewallWL) Name() string { return "firewall" }

func (w *firewallWL) Setup(m *prism.Machine) error {
	w.m = m
	b, err := m.Alloc("fw.data", 64<<10)
	w.base = b
	return err
}

func (w *firewallWL) Run(ctx *prism.Ctx) {
	p := ctx.P
	nodeID := p.Node().ID
	pageSize := 4096

	// Node 0 maps the protected page and installs the capability list.
	if ctx.ID == 0 {
		p.WriteRange(w.base, pageSize)
		if err := w.m.SetPageCaps(w.base, []prism.NodeID{0, 1}); err != nil {
			log.Fatal(err)
		}
	}
	p.Barrier(1)

	switch {
	case nodeID == 1 && ctx.ID%4 == 0:
		// Authorized sharer: normal reads and writes.
		p.ReadRange(w.base, pageSize)
		p.WriteRange(w.base, pageSize/2)
	case nodeID == 7 && ctx.ID%4 == 0:
		// Faulty node: wild writes into the protected page.
		for i := 0; i < 16; i++ {
			p.Write(w.base + prism.VAddr(i*64))
			w.wildAttempts++
		}
	}
	p.Barrier(2)

	if ctx.ID == 0 {
		for _, q := range w.m.Procs {
			if q.Node().ID == mem.NodeID(7) {
				w.wildFaults += q.Stats.AccessFaults
			}
			if q.Node().ID == mem.NodeID(1) {
				w.goodFaults += q.Stats.AccessFaults
			}
		}
		home, _ := w.m.StaticHomeOf(w.base)
		w.drops = w.m.Nodes[home].Ctrl.PIT.Stats.FirewallDrops
	}
}

func main() {
	cfg := workloads.ConfigForSize(workloads.CISize)
	cfg.Policy = prism.MustPolicy("SCOMA")
	m, err := prism.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := &firewallWL{}
	if _, err := m.Run(w); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Memory firewall (PIT capability list) demo:")
	fmt.Printf("  wild writes attempted by faulty node 7: %d\n", w.wildAttempts)
	fmt.Printf("  access faults taken by node 7:          %d\n", w.wildFaults)
	fmt.Printf("  firewall drops recorded at the home:    %d\n", w.drops)
	fmt.Printf("  access faults at authorized node 1:     %d\n", w.goodFaults)
	if w.wildFaults > 0 && w.goodFaults == 0 {
		fmt.Println("  ✓ wild writes contained; authorized traffic unaffected")
	} else {
		fmt.Println("  ✗ unexpected outcome")
	}
}
