// Migration: lazy page migration (§3.5) in action. A skewed workload
// makes node 5's processors hammer pages whose round-robin static
// homes are scattered across the machine — first with fixed homes,
// then with the run-time migration daemon attached. Migrating the hot
// pages' dynamic homes to node 5 converts its remote misses into local
// ones without any global coordination: stale client PIT entries
// self-correct through misdirected-request forwarding.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/internal/mem"
	"prism/workloads"
)

// skewWL: every processor touches the whole array once (so every node
// maps the pages and holds hints), then node `hot`'s processors loop
// over it many times with writes while everyone else idles.
type skewWL struct {
	base  prism.VAddr
	bytes int
	hot   int // hot node
	loops int
}

func (w *skewWL) Name() string { return "skew" }

func (w *skewWL) Setup(m *prism.Machine) error {
	w.bytes = 96 << 10
	w.loops = 24
	w.hot = 5
	b, err := m.Alloc("skew.data", uint64(w.bytes))
	w.base = b
	return err
}

func (w *skewWL) Run(ctx *prism.Ctx) {
	p := ctx.P
	chunk := w.bytes / ctx.N
	p.WriteRange(w.base+prism.VAddr(ctx.ID*chunk), chunk)
	p.Barrier(1)
	p.ReadRange(w.base, w.bytes) // everyone maps everything
	p.Barrier(2)

	ctx.BeginParallel()
	if ctx.P.Node().ID == mem.NodeID(w.hot) {
		for l := 0; l < w.loops; l++ {
			p.WriteRange(w.base, w.bytes)
			p.ReadRange(w.base, w.bytes)
		}
	}
	ctx.EndParallel()
}

func run(withDaemon bool) (prism.Results, int) {
	cfg := workloads.ConfigForSize(workloads.CISize)
	cfg.Policy = prism.MustPolicy("LANUMA") // CC-NUMA style: placement matters most
	m, err := prism.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if withDaemon {
		prism.AttachMigration(m, 50_000, prism.DefaultMigrationPolicy)
	}
	res, err := m.Run(&skewWL{})
	if err != nil {
		log.Fatal(err)
	}
	return res, m.Reg.MigratedPages()
}

func main() {
	fixed, _ := run(false)
	migr, pages := run(true)

	fmt.Println("LA-NUMA (CC-NUMA-style) pages, hot node 5, homes round-robin:")
	fmt.Printf("  fixed homes:    cycles=%-12d remote misses=%-8d\n", fixed.Cycles, fixed.RemoteMisses)
	fmt.Printf("  with migration: cycles=%-12d remote misses=%-8d forwards=%d migrated pages=%d\n",
		migr.Cycles, migr.RemoteMisses, migr.Forwards, pages)
	if migr.Cycles < fixed.Cycles {
		fmt.Printf("  speedup: %.2fx — the hot pages' homes moved to node 5, lazily.\n",
			float64(fixed.Cycles)/float64(migr.Cycles))
	} else {
		fmt.Println("  (no speedup at this scale — try more loops)")
	}
}
