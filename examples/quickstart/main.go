// Quickstart: build the paper's 32-processor PRISM machine, run the
// FFT workload under the Dyn-LRU adaptive page-mode policy, and print
// the run's statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/workloads"
)

func main() {
	// A machine scaled for the CI-sized data sets (quarter-scale
	// caches keep the capacity trade-off of §4.1 in play). The sized
	// Config seeds prism.New; functional options layer on top of it.
	base := workloads.ConfigForSize(workloads.CISize)

	// Capped policies size the page cache from a SCOMA pass, as the
	// paper does: 70% of the per-node maximum client frame count.
	m0, err := prism.New(base, prism.WithPolicy("SCOMA"))
	if err != nil {
		log.Fatal(err)
	}
	pre, err := m0.Run(workloads.NewFFT(workloads.CISize))
	if err != nil {
		log.Fatal(err)
	}
	caps := make([]int, len(pre.MaxClientFrames))
	for i, c := range pre.MaxClientFrames {
		if caps[i] = c * 7 / 10; caps[i] < 1 {
			caps[i] = 1
		}
	}

	m, err := prism.New(base,
		prism.WithPolicy("Dyn-LRU"),
		prism.WithPageCacheCaps(caps),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(workloads.NewFFT(workloads.CISize))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res)
	fmt.Printf("\nSCOMA baseline cycles: %d  →  Dyn-LRU: %d (%.2fx)\n",
		pre.Cycles, res.Cycles, float64(res.Cycles)/float64(pre.Cycles))
}
